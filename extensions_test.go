package dkclique

import (
	"testing"
	"time"
)

func TestFindExactPublic(t *testing.T) {
	g, err := Generate(Planted(4, 3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindExact(g, 3, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 4 {
		t.Fatalf("exact size = %d, want 4", res.Size())
	}
	// Exact is never smaller than LP.
	lp, err := Find(g, Options{K: 3, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() < lp.Size() {
		t.Fatal("exact below LP")
	}
}

func TestMatchingPublic(t *testing.T) {
	// C6: maximum matching 3, greedy at least 2.
	g, err := FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	mx := MaximumMatching(g)
	if mx.Size() != 3 {
		t.Fatalf("maximum = %d, want 3", mx.Size())
	}
	gr := GreedyMatching(g)
	if gr.Size() < 2 || gr.Size() > 3 {
		t.Fatalf("greedy = %d", gr.Size())
	}
	for _, e := range mx.Edges() {
		if mx.Mate(e[0]) != e[1] || mx.Mate(e[1]) != e[0] {
			t.Fatal("Mate inconsistent with Edges")
		}
	}
}

func TestPartitionPublic(t *testing.T) {
	g, err := Generate(CommunitySocial(300, 6, 0.3, 300, 5))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGraph(g, Options{K: 3, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	if p.FullCliques() == 0 || len(p.Teams()) < p.FullCliques() {
		t.Fatalf("cliques=%d teams=%d", p.FullCliques(), len(p.Teams()))
	}
	if len(p.Unassigned()) >= 3 {
		t.Fatalf("%d unassigned", len(p.Unassigned()))
	}
	hist := p.DensityHistogram()
	if hist[3] < p.FullCliques() {
		t.Fatal("histogram misses full cliques")
	}
	if p.InternalEdges(0) != 3 {
		t.Fatal("first team should be a triangle")
	}
	if _, err := PartitionGraph(g, Options{K: 3, Algorithm: OPT}); err == nil {
		t.Fatal("OPT should be rejected")
	}
}

func TestDynamicNodeOpsPublic(t *testing.T) {
	g, err := FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamic(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Size() != 1 {
		t.Fatal("triangle should be packed at build")
	}
	id := dyn.AddNode()
	if id != 3 {
		t.Fatalf("id = %d", id)
	}
	if n := dyn.RemoveNode(0); n != 2 {
		t.Fatalf("removed %d edges, want 2", n)
	}
	if dyn.Size() != 0 {
		t.Fatal("clique should dissolve")
	}
	// Rebuild a triangle on the new node.
	dyn.InsertEdge(1, 2)
	dyn.InsertEdge(1, id)
	dyn.InsertEdge(2, id)
	if dyn.Size() != 1 {
		t.Fatal("new triangle should be packed")
	}
}
