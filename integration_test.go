package dkclique

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// TestEndToEndStaticPipeline exercises the full static path: generate →
// serialise → parse → solve with every algorithm → verify → check
// approximation relations between methods.
func TestEndToEndStaticPipeline(t *testing.T) {
	g0, err := Generate(CommunitySocial(800, 7, 0.3, 1200, 321))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g0.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != g0.N() || g.M() != g0.M() {
		t.Fatal("serialisation round trip changed the graph")
	}

	k := 3
	sizes := map[Algorithm]int{}
	for _, alg := range []Algorithm{HG, GC, L, LP} {
		res, err := Find(g, Options{K: k, Algorithm: alg, Budget: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := Verify(g, k, res.Cliques); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !IsMaximal(g, k, res.Cliques) {
			t.Fatalf("%v: not maximal", alg)
		}
		sizes[alg] = res.Size()
	}
	// The paper's quality ordering: LP and GC above (or equal to) HG, and
	// L == LP exactly.
	if sizes[LP] < sizes[HG] {
		t.Fatalf("LP (%d) below HG (%d)", sizes[LP], sizes[HG])
	}
	if sizes[L] != sizes[LP] {
		t.Fatalf("L (%d) != LP (%d)", sizes[L], sizes[LP])
	}
	// Maximality gives the k-approximation bound even without OPT: any two
	// maximal sets are within a factor k of each other.
	if sizes[HG]*k < sizes[LP] {
		t.Fatal("k-approximation relation violated between maximal sets")
	}
}

// TestEndToEndDynamicPipeline drives the dynamic engine from a static
// result through heavy churn and cross-checks against static recomputation
// on the final topology.
func TestEndToEndDynamicPipeline(t *testing.T) {
	g, err := Generate(CommunitySocial(500, 6, 0.35, 800, 654))
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	static, err := Find(g, Options{K: k, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamic(g, k, static.Cliques)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(777))
	var edges [][2]int32
	g.Edges(func(u, v int32) bool { edges = append(edges, [2]int32{u, v}); return true })
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	// Delete a third of the graph, then add random edges back.
	for _, e := range edges[:len(edges)/3] {
		dyn.DeleteEdge(e[0], e[1])
	}
	for i := 0; i < len(edges)/3; i++ {
		u := int32(rng.Intn(g.N()))
		v := int32(rng.Intn(g.N()))
		if u != v {
			dyn.InsertEdge(u, v)
		}
	}

	final := dyn.Snapshot()
	if err := Verify(final, k, dyn.Result()); err != nil {
		t.Fatal(err)
	}
	if !IsMaximal(final, k, dyn.Result()) {
		t.Fatal("maintained set must stay maximal")
	}
	rebuilt, err := Find(final, Options{K: k, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	diff := dyn.Size() - rebuilt.Size()
	if diff < 0 {
		diff = -diff
	}
	if diff > rebuilt.Size()/4+2 {
		t.Fatalf("dynamic %d vs rebuild %d drifted too far", dyn.Size(), rebuilt.Size())
	}
}

// TestEndToEndExactAgreement runs the two exact methods and LP on small
// graphs: exact == exact >= LP with the k-approximation floor.
func TestEndToEndExactAgreement(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := Generate(ErdosRenyi(22, 70, 900+seed))
		if err != nil {
			t.Fatal(err)
		}
		k := 3
		exact, err := FindExact(g, k, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Find(g, Options{K: k, Algorithm: OPT, Budget: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Size() != opt.Size() {
			t.Fatalf("seed %d: exact methods disagree: %d vs %d", seed, exact.Size(), opt.Size())
		}
		lp, err := Find(g, Options{K: k, Algorithm: LP})
		if err != nil {
			t.Fatal(err)
		}
		if lp.Size() > exact.Size() || exact.Size() > k*lp.Size() {
			t.Fatalf("seed %d: approximation relation violated: LP=%d exact=%d", seed, lp.Size(), exact.Size())
		}
	}
}

// TestEndToEndMatchingConsistency checks that on triangle-free graphs the
// k = 2 machinery (matching) dominates any "pairing" interpretation of
// the clique machinery and behaves on known structures.
func TestEndToEndMatchingConsistency(t *testing.T) {
	// A long even cycle: perfect matching exists.
	n := 40
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mx := MaximumMatching(g)
	if mx.Size() != n/2 {
		t.Fatalf("even cycle matching = %d, want %d", mx.Size(), n/2)
	}
	gr := GreedyMatching(g)
	if 2*gr.Size() < mx.Size() {
		t.Fatal("greedy below half bound")
	}
	// No triangles: the k = 3 solvers must return empty.
	res, err := Find(g, Options{K: 3, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 0 {
		t.Fatal("cycle has no triangles")
	}
}

// TestEndToEndPartitionOnDataset partitions a benchmark stand-in and
// checks the assignment accounting.
func TestEndToEndPartitionOnDataset(t *testing.T) {
	g, err := LoadDataset("HST")
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGraph(g, Options{K: 4, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	assigned := len(p.Teams()) * 4
	if assigned+len(p.Unassigned()) != g.N() {
		t.Fatalf("%d assigned + %d unassigned != %d nodes", assigned, len(p.Unassigned()), g.N())
	}
	if p.FullCliques() == 0 {
		t.Fatal("HST stand-in should contain 4-cliques")
	}
}
