// Command djclique computes a maximal set of disjoint k-cliques of a graph
// with one of the paper's algorithms.
//
// Usage:
//
//	djclique -k 4 -alg LP -input graph.txt
//	djclique -k 3 -alg HG -dataset OR -print
//	djclique -k 3 -dataset HST -json
//	djclique -k 3 -input graph.txt -interactive
//
// The input is a whitespace-separated edge list ('#'/'%' comments allowed).
// With -dataset, one of the built-in benchmark stand-ins is used instead.
//
// Interactive mode maintains the result under updates (Section V of the
// paper), reading commands from stdin:
//
//	insert U V   delete U V   size   cliques   candidates   quit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	dkclique "repro"
)

func main() {
	var (
		inputPath   = flag.String("input", "", "edge-list file to read ('-' for stdin)")
		dsName      = flag.String("dataset", "", "built-in dataset name (FTB, HST, ..., OR) instead of -input")
		k           = flag.Int("k", 3, "clique size (>= 3)")
		algName     = flag.String("alg", "LP", "algorithm: HG, GC, L, LP or OPT")
		budget      = flag.Duration("budget", 0, "optional wall-time budget (e.g. 30s); exceeding it fails with OOT")
		maxStored   = flag.Int("max-cliques", 0, "optional storage cap for GC/OPT; exceeding it fails with OOM")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		strict      = flag.Bool("strict", false, "strict total clique ordering (Theorem 4 mode)")
		print       = flag.Bool("print", false, "print every clique, one per line")
		check       = flag.Bool("check", true, "verify the result before reporting")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON on stdout")
		interactive = flag.Bool("interactive", false, "after solving, maintain the result under stdin updates")
	)
	flag.Parse()

	alg, err := dkclique.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	g, err := loadGraph(*inputPath, *dsName)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graph: n=%d m=%d\n", g.N(), g.M())

	start := time.Now()
	res, err := dkclique.Find(g, dkclique.Options{
		K:                *k,
		Algorithm:        alg,
		Workers:          *workers,
		Budget:           *budget,
		MaxStoredCliques: *maxStored,
		StrictTies:       *strict,
	})
	if err != nil {
		fatal(err)
	}
	if *check {
		if err := dkclique.Verify(g, *k, res.Cliques); err != nil {
			fatal(fmt.Errorf("result failed verification: %w", err))
		}
	}
	elapsed := time.Since(start)

	switch {
	case *jsonOut:
		out := jsonResult{
			Algorithm: res.Algorithm.String(),
			K:         res.K,
			Nodes:     g.N(),
			Edges:     g.M(),
			Size:      res.Size(),
			Covered:   res.CoveredNodes(),
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			Cliques:   res.Cliques,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	default:
		fmt.Printf("algorithm=%s k=%d |S|=%d covered=%d/%d elapsed=%s\n",
			res.Algorithm, res.K, res.Size(), res.CoveredNodes(), g.N(), elapsed.Round(time.Microsecond))
		if res.TotalKCliques > 0 {
			fmt.Printf("total %d-cliques counted: %d\n", *k, res.TotalKCliques)
		}
		if *print {
			for _, c := range res.Cliques {
				for i, u := range c {
					if i > 0 {
						fmt.Print(" ")
					}
					fmt.Print(u)
				}
				fmt.Println()
			}
		}
	}

	if *interactive {
		dyn, err := dkclique.NewDynamic(g, *k, res.Cliques)
		if err != nil {
			fatal(err)
		}
		if err := repl(os.Stdin, os.Stdout, dyn); err != nil {
			fatal(err)
		}
	}
}

type jsonResult struct {
	Algorithm string    `json:"algorithm"`
	K         int       `json:"k"`
	Nodes     int       `json:"nodes"`
	Edges     int       `json:"edges"`
	Size      int       `json:"size"`
	Covered   int       `json:"covered"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Cliques   [][]int32 `json:"cliques"`
}

// repl maintains the result under textual update commands.
func repl(in io.Reader, out io.Writer, dyn *dkclique.Dynamic) error {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(out, "interactive: insert U V | delete U V | size | cliques | candidates | quit")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return nil
		case "size":
			fmt.Fprintf(out, "|S| = %d\n", dyn.Size())
		case "candidates":
			fmt.Fprintf(out, "index holds %d candidate cliques\n", dyn.NumCandidates())
		case "cliques":
			for _, c := range dyn.Result() {
				fmt.Fprintln(out, c)
			}
		case "insert", "delete":
			if len(fields) != 3 {
				fmt.Fprintf(out, "usage: %s U V\n", fields[0])
				continue
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				fmt.Fprintln(out, "bad node ids")
				continue
			}
			t0 := time.Now()
			var changed bool
			if fields[0] == "insert" {
				changed = dyn.InsertEdge(int32(u), int32(v))
			} else {
				changed = dyn.DeleteEdge(int32(u), int32(v))
			}
			fmt.Fprintf(out, "%s(%d,%d): applied=%v |S|=%d (%s)\n",
				fields[0], u, v, changed, dyn.Size(), time.Since(t0).Round(time.Microsecond))
		default:
			fmt.Fprintf(out, "unknown command %q\n", fields[0])
		}
	}
	return sc.Err()
}

func loadGraph(path, ds string) (*dkclique.Graph, error) {
	switch {
	case ds != "":
		return dkclique.LoadDataset(ds)
	case path == "-":
		return dkclique.Read(os.Stdin)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dkclique.Read(f)
	}
	return nil, fmt.Errorf("need -input FILE or -dataset NAME")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "djclique:", err)
	os.Exit(1)
}
