// Command gengraph emits synthetic graphs as edge lists.
//
// Usage:
//
//	gengraph -model ws -n 100000 -deg 16 -beta 0.1 > ws.txt
//	gengraph -model caveman -nc 1000 -cs 6 -p 0.2 -out caves.txt
//	gengraph -model planted -c 500 -k 4
//
// Models: ws (Watts–Strogatz), er (Erdős–Rényi G(n,m)), ba
// (Barabási–Albert), caveman (relaxed caveman), planted (disjoint
// k-cliques + noise), sbm (stochastic block model), social (community +
// hub mixture).
package main

import (
	"flag"
	"fmt"
	"os"

	dkclique "repro"
)

func main() {
	var (
		model  = flag.String("model", "ws", "ws | er | ba | caveman | planted | sbm | social")
		out    = flag.String("out", "", "output file (default stdout)")
		format = flag.String("format", "text", "text (edge list) or binary (fast CSR dump)")
		seed   = flag.Int64("seed", 1, "random seed")
		n      = flag.Int("n", 10000, "nodes (ws, er, ba, social)")
		m      = flag.Int("m", 50000, "edges (er)")
		deg    = flag.Int("deg", 8, "lattice degree (ws) / edges per node (ba)")
		beta   = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		nc     = flag.Int("nc", 500, "community count (caveman)")
		cs     = flag.Int("cs", 6, "community size (caveman) / (social)")
		p      = flag.Float64("p", 0.2, "rewiring probability (caveman, social)")
		c      = flag.Int("c", 100, "planted clique count")
		k      = flag.Int("k", 4, "planted clique size")
		noise  = flag.Int("noise", 0, "planted noise edges")
		hub    = flag.Int("hub", 0, "hub edges (social; default 2n)")
	)
	flag.Parse()

	var spec dkclique.GenSpec
	switch *model {
	case "ws":
		spec = dkclique.WattsStrogatz(*n, *deg, *beta, *seed)
	case "er":
		spec = dkclique.ErdosRenyi(*n, *m, *seed)
	case "ba":
		spec = dkclique.BarabasiAlbert(*n, *deg, *seed)
	case "caveman":
		spec = dkclique.RelaxedCaveman(*nc, *cs, *p, *seed)
	case "planted":
		spec = dkclique.Planted(*c, *k, *noise, *seed)
	case "sbm":
		spec = dkclique.StochasticBlock(*nc, *cs, 0.7, *p/10, *seed)
	case "social":
		h := *hub
		if h == 0 {
			h = 2 * *n
		}
		spec = dkclique.CommunitySocial(*n, *cs, *p, h, *seed)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	g, err := dkclique.Generate(spec)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = g.Write(w)
	case "binary":
		err = g.WriteBinary(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %s n=%d m=%d (%s)\n", *model, g.N(), g.M(), *format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
