// Command dkserver serves a continuously updated disjoint k-clique set
// over HTTP: it loads (or generates) a graph, solves it with a static
// algorithm, then keeps the result fresh behind a dkclique.Service — a
// single writer draining queued updates into batched engine calls while
// read requests answer from immutable snapshots, lock-free.
//
// Usage:
//
//	dkserver -k 4 -alg LP -input graph.txt -addr :8080
//	dkserver -k 3 -dataset HST
//	dkserver -k 3 -gen 10000,20000,1        # synthetic community graph
//
// Endpoints (JSON):
//
//	GET  /snapshot            point-in-time result set; ?cliques=0 omits members
//	GET  /clique/{node}       the clique covering a node, if any
//	GET  /stats               service + engine counters
//	POST /update              {"ops":[{"insert":true,"u":1,"v":2},...],"flush":true}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	dkclique "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		inputPath = flag.String("input", "", "edge-list file to read")
		dsName    = flag.String("dataset", "", "built-in dataset name instead of -input")
		genSpec   = flag.String("gen", "", "generate a community graph: NODES,EDGES,SEED")
		k         = flag.Int("k", 3, "clique size (>= 3)")
		algName   = flag.String("alg", "LP", "static algorithm for the initial set")
		workers   = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")
		queueCap  = flag.Int("queue", 0, "update queue capacity (0 = default)")
		maxBatch  = flag.Int("batch", 0, "max ops coalesced per engine batch (0 = default)")
	)
	flag.Parse()

	g, err := loadGraph(*inputPath, *dsName, *genSpec)
	if err != nil {
		fatal(err)
	}
	log.Printf("graph: n=%d m=%d", g.N(), g.M())

	alg, err := dkclique.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := dkclique.Find(g, dkclique.Options{K: *k, Algorithm: alg, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	log.Printf("initial solve: |S|=%d in %s", res.Size(), time.Since(start).Round(time.Millisecond))

	svc, err := dkclique.NewService(g, *k, res.Cliques, dkclique.ServiceOptions{
		Workers:       *workers,
		QueueCapacity: *queueCap,
		MaxBatch:      *maxBatch,
	})
	if err != nil {
		fatal(err)
	}
	defer svc.Close()

	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, newHandler(svc, g.N())); err != nil {
		fatal(err)
	}
}

// newHandler builds the HTTP API over a running service. n is the node-id
// bound used to validate update requests (the engine panics on
// out-of-range ids by design, so the API rejects them up front).
func newHandler(svc *dkclique.Service, n int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Snapshot()
		resp := snapshotResponse{
			Version: snap.Version(),
			K:       snap.K(),
			Nodes:   snap.N(),
			Edges:   snap.M(),
			Size:    snap.Size(),
		}
		if r.URL.Query().Get("cliques") != "0" {
			resp.Cliques = snap.Cliques()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /clique/{node}", func(w http.ResponseWriter, r *http.Request) {
		u, err := strconv.ParseInt(r.PathValue("node"), 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad node id")
			return
		}
		snap := svc.Snapshot()
		c := snap.CliqueOf(int32(u))
		writeJSON(w, http.StatusOK, cliqueResponse{
			Node:    int32(u),
			Version: snap.Version(),
			Covered: c != nil,
			Clique:  c,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Snapshot()
		st := svc.Stats()
		es := snap.Stats()
		writeJSON(w, http.StatusOK, statsResponse{
			Version:    snap.Version(),
			Size:       snap.Size(),
			Nodes:      snap.N(),
			Edges:      snap.M(),
			Enqueued:   st.Enqueued,
			Applied:    st.Applied,
			Changed:    st.Changed,
			Batches:    st.Batches,
			Flushes:    st.Flushes,
			Insertions: es.Insertions,
			Deletions:  es.Deletions,
			Swaps:      es.Swaps,
			IndexMS:    float64(es.IndexBuild.Microseconds()) / 1000,
		})
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req updateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if len(req.Ops) == 0 {
			writeError(w, http.StatusBadRequest, "no ops")
			return
		}
		ops := make([]dkclique.Update, len(req.Ops))
		for i, op := range req.Ops {
			if op.U < 0 || int(op.U) >= n || op.V < 0 || int(op.V) >= n || op.U == op.V {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("op %d: invalid edge (%d,%d) for %d nodes", i, op.U, op.V, n))
				return
			}
			ops[i] = dkclique.Update{Insert: op.Insert, U: op.U, V: op.V}
		}
		if err := svc.Enqueue(r.Context(), ops...); err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		if req.Flush {
			if err := svc.Flush(r.Context()); err != nil {
				writeError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
		}
		snap := svc.Snapshot()
		writeJSON(w, http.StatusAccepted, updateResponse{
			Enqueued: len(ops),
			Flushed:  req.Flush,
			Version:  snap.Version(),
			Size:     snap.Size(),
		})
	})
	return mux
}

type snapshotResponse struct {
	Version uint64    `json:"version"`
	K       int       `json:"k"`
	Nodes   int       `json:"nodes"`
	Edges   int       `json:"edges"`
	Size    int       `json:"size"`
	Cliques [][]int32 `json:"cliques,omitempty"`
}

type cliqueResponse struct {
	Node    int32   `json:"node"`
	Version uint64  `json:"version"`
	Covered bool    `json:"covered"`
	Clique  []int32 `json:"clique,omitempty"`
}

type statsResponse struct {
	Version    uint64  `json:"version"`
	Size       int     `json:"size"`
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	Enqueued   uint64  `json:"enqueued"`
	Applied    uint64  `json:"applied"`
	Changed    uint64  `json:"changed"`
	Batches    uint64  `json:"batches"`
	Flushes    uint64  `json:"flushes"`
	Insertions int     `json:"insertions"`
	Deletions  int     `json:"deletions"`
	Swaps      int     `json:"swaps"`
	IndexMS    float64 `json:"index_build_ms"`
}

type updateRequest struct {
	Ops []struct {
		Insert bool  `json:"insert"`
		U      int32 `json:"u"`
		V      int32 `json:"v"`
	} `json:"ops"`
	Flush bool `json:"flush"`
}

type updateResponse struct {
	Enqueued int    `json:"enqueued"`
	Flushed  bool   `json:"flushed"`
	Version  uint64 `json:"version"`
	Size     int    `json:"size"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dkserver: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func loadGraph(path, ds, gen string) (*dkclique.Graph, error) {
	switch {
	case ds != "":
		return dkclique.LoadDataset(ds)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dkclique.Read(f)
	case gen != "":
		parts := strings.Split(gen, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-gen wants NODES,EDGES,SEED, got %q", gen)
		}
		nodes, err1 := strconv.Atoi(parts[0])
		edges, err2 := strconv.Atoi(parts[1])
		seed, err3 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("-gen wants NODES,EDGES,SEED, got %q", gen)
		}
		return dkclique.Generate(dkclique.CommunitySocial(nodes, 10, 0.2, edges, seed))
	}
	return nil, fmt.Errorf("need -input FILE, -dataset NAME or -gen NODES,EDGES,SEED")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dkserver:", err)
	os.Exit(1)
}
