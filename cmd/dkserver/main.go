// Command dkserver serves a continuously updated disjoint k-clique set
// over HTTP: it loads (or generates) a graph, solves it with a static
// algorithm, then keeps the result fresh behind a dkclique.Service — a
// single writer draining queued updates into batched engine calls while
// read requests answer from immutable snapshots, lock-free.
//
// Usage:
//
//	dkserver -k 4 -alg LP -input graph.txt -addr :8080
//	dkserver -k 3 -dataset HST
//	dkserver -k 3 -gen 10000,20000,1        # synthetic community graph
//	dkserver -k 3 -gen 10000,20000,1 -data /var/lib/dkclique
//	dkserver -k 3 -dataset HST -tcp :8081   # + raw TCP frame transport
//
// With -data, the service is durable: updates are written ahead to a log
// under the directory and the engine state is checkpointed periodically
// and on shutdown. When the directory already holds a store, dkserver
// ignores the graph flags and resumes the persisted state (checkpoint +
// WAL replay) instead of re-solving. SIGINT/SIGTERM trigger a graceful
// shutdown: the listener drains in-flight requests, the update queue
// drains into the engine, and a final checkpoint lands before exit.
//
// Endpoints (served by internal/httpapi; every GET also answers with
// compact binary frames under "Accept: application/x-dkclique-frame",
// and /snapshot bodies are cached against the snapshot version):
//
//	GET  /snapshot            point-in-time result set; ?cliques=0 omits members
//	GET  /clique/{node}       the clique covering a node, if any
//	GET  /cliques?nodes=1,2,3 batched lookup against one snapshot, deduplicated
//	GET  /stats               service + engine counters
//	POST /update              {"ops":[{"insert":true,"u":1,"v":2},...],"flush":true}
//
// With -tcp ADDR a second, wire-native transport listens alongside HTTP:
// persistent connections speaking internal/wire request/response frames
// with pipelining, plus a subscribe mode that pushes snapshot deltas
// (see internal/framesrv and workload.FrameClient). Both transports
// serve snapshot bodies from one shared version-keyed cache, and a
// graceful shutdown drains both listeners before the final checkpoint.
//
// Replication: with -tcp set, the process also serves replication
// streams to followers under the fencing epoch given by -epoch
// (monotone across primary handoffs — bump it on every failover). A
// follower process runs with -follow PRIMARY_TCP_ADDR instead of the
// graph flags: it installs a checkpoint from the primary (or resumes
// its own -data store), applies the shipped batch stream, serves reads
// over both transports, and answers /readyz by its replication state
// (installed + connected + lag within -readylag). Writes against a
// follower are refused with 403.
//
//	dkserver -k 3 -dataset HST -tcp :8081 -epoch 1            # primary
//	dkserver -follow primary:8081 -addr :8090 -data /var/f1   # follower
//
// Multi-tenant serving: with -root DIR the process becomes a store
// manager hosting many named graph engines under one directory, each a
// full engine + WAL + checkpoint store in DIR/<name> behind its own
// flock. The graph flags seed the "default" tenant on first boot (an
// empty graph when absent); -tenants NAME[:K[:NODES[:EDGES[:SEED]]]],...
// bootstraps more, and POST /tenants/{name} creates them at runtime
// (GET /tenants lists them). The root-level endpoints keep serving
// "default" unchanged; a /t/{tenant}/ prefix (HTTP) or a tenant-
// suffixed request frame (TCP) targets any other. Tenants open lazily
// on first touch, close cleanly after -idleclose of idleness, and at
// most -maxtenants stores are open at once (least-recently-used idle
// tenants are evicted first). Replication attaches to the default
// tenant only.
//
//	dkserver -root /var/lib/dk -gen 10000,20000,1 -tenants alpha:4,beta:3:5000:20000:7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	dkclique "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/framesrv"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/manager"
	"repro/internal/repl"
	"repro/internal/respcache"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		tcpAddr     = flag.String("tcp", "", "raw TCP frame-transport listen address (empty = disabled)")
		inputPath   = flag.String("input", "", "edge-list file to read")
		dsName      = flag.String("dataset", "", "built-in dataset name instead of -input")
		genSpec     = flag.String("gen", "", "generate a community graph: NODES,EDGES,SEED")
		k           = flag.Int("k", 3, "clique size (>= 3)")
		algName     = flag.String("alg", "LP", "static algorithm for the initial set")
		workers     = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")
		queueCap    = flag.Int("queue", 0, "update queue capacity (0 = default)")
		maxBatch    = flag.Int("batch", 0, "max ops coalesced per engine batch (0 = default)")
		dataDir     = flag.String("data", "", "durable store directory (WAL + checkpoints); empty = in-memory")
		fsyncMode   = flag.String("fsync", "batch", `WAL sync policy with -data: "batch" or "none"`)
		ckptEvery   = flag.Int("checkpoint", 0, "applied ops between checkpoints with -data (0 = default)")
		groupCommit = flag.Duration("groupcommit", 0, "extra fsync coalescing window for the pipelined write path (0 = sync immediately)")
		serialDur   = flag.Bool("serialdurability", false, "disable the pipelined write path: inline fsyncs and blocking checkpoints")
		maxOps      = flag.Int("maxops", 8192, "maximum ops per /update request and nodes per /cliques batch")
		maxBody     = flag.Int64("maxbody", 1<<20, "maximum /update request body bytes")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown timeout for in-flight requests")
		follow      = flag.String("follow", "", "replicate from this primary frame-transport address (follower mode)")
		epoch       = flag.Uint64("epoch", 1, "replication fencing epoch with -tcp; bump on every primary handoff")
		readyLag    = flag.Uint64("readylag", 1024, "follower replication lag above which /readyz reports 503")
		rootDir     = flag.String("root", "", "multi-tenant root directory: host many named stores under it")
		tenantsSpec = flag.String("tenants", "", "bootstrap tenants with -root: NAME[:K[:NODES[:EDGES[:SEED]]]],...")
		maxTenants  = flag.Int("maxtenants", 64, "open-tenant cap with -root; idle tenants are evicted past it")
		idleClose   = flag.Duration("idleclose", 0, "close tenants idle this long with -root (0 = never)")
		tenantQuota = flag.Int("tenantops", 0, "per-tenant queued-op quota with -root; excess updates get 429 (0 = unlimited)")
	)
	flag.Parse()

	if *rootDir != "" {
		if *follow != "" {
			fatal(errors.New("-root and -follow are mutually exclusive (followers replicate one store)"))
		}
		if *dataDir != "" {
			fatal(errors.New("-root and -data are mutually exclusive (tenant stores live under the root)"))
		}
	}

	var policy dkclique.FsyncPolicy
	switch *fsyncMode {
	case "batch":
		policy = dkclique.FsyncEveryBatch
	case "none":
		policy = dkclique.FsyncNone
	default:
		fatal(fmt.Errorf(`-fsync wants "batch" or "none", got %q`, *fsyncMode))
	}
	opts := dkclique.ServiceOptions{
		Workers:             *workers,
		QueueCapacity:       *queueCap,
		MaxBatch:            *maxBatch,
		Dir:                 *dataDir,
		Fsync:               policy,
		CheckpointEvery:     *ckptEvery,
		GroupCommitInterval: *groupCommit,
		SerialDurability:    *serialDur,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		svc       *dkclique.Service      // single-tenant primary mode only
		follower  *dkclique.ReplFollower // follower mode only
		mgr       *manager.Manager       // -root mode only
		defHandle *manager.Handle        // -root mode: the pinned default tenant
		front     server                 // what both transports serve
		ready     func() error           // the /readyz probe
	)
	switch {
	case *rootDir != "":
		m, err := manager.Open(*rootDir, manager.Options{
			MaxTenants:   *maxTenants,
			IdleClose:    *idleClose,
			MaxQueuedOps: *tenantQuota,
			Service:      opts,
		})
		if err != nil {
			fatal(err)
		}
		mgr = m
		if err := seedDefaultTenant(m, *inputPath, *dsName, *genSpec, *algName, *k, *workers); err != nil {
			fatal(err)
		}
		if err := bootstrapTenants(m, *tenantsSpec); err != nil {
			fatal(err)
		}
		// Pin the default tenant for the process lifetime: the root-level
		// routes and the replication primary must never see it evicted.
		h, err := m.Acquire(manager.DefaultTenant)
		if err != nil {
			fatal(err)
		}
		defHandle = h
		front, ready = h, h.Service().Err
		snap := h.Snapshot()
		log.Printf("manager: %d tenants under %s (default pinned: n=%d m=%d |S|=%d version=%d)",
			len(m.List()), *rootDir, snap.N(), snap.M(), snap.Size(), snap.Version())
	case *follow != "":
		f, err := dkclique.NewReplFollower(dkclique.ReplFollowerOptions{
			Addr: *follow, Dir: *dataDir, Workers: *workers, Fsync: policy,
			LagBound: *readyLag, Logf: log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		go f.Run(ctx)
		log.Printf("follower: replicating from %s", *follow)
		start := time.Now()
		if err := f.WaitInstalled(ctx); err != nil {
			fatal(fmt.Errorf("follower: waiting for first install: %w", err))
		}
		st := f.Status()
		log.Printf("follower: serving at version %d (epoch %d, %d install) after %s",
			st.Version, st.Epoch, st.Installs, time.Since(start).Round(time.Millisecond))
		follower, front, ready = f, f.Front(), f.Ready
	case *dataDir != "" && dkclique.StoreExists(*dataDir):
		log.Printf("resuming store in %s", *dataDir)
		start := time.Now()
		s, err := dkclique.OpenService(*dataDir, opts)
		if err != nil {
			fatal(err)
		}
		svc = s
		snap := svc.Snapshot()
		st := svc.Stats()
		log.Printf("recovered: n=%d m=%d |S|=%d version=%d (replayed %d ops) in %s",
			snap.N(), snap.M(), snap.Size(), snap.Version(), st.Recovered,
			time.Since(start).Round(time.Millisecond))
	default:
		g, err := loadGraph(*inputPath, *dsName, *genSpec)
		if err != nil {
			fatal(err)
		}
		log.Printf("graph: n=%d m=%d", g.N(), g.M())
		alg, err := dkclique.ParseAlgorithm(*algName)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := dkclique.Find(g, dkclique.Options{K: *k, Algorithm: alg, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		log.Printf("initial solve: |S|=%d in %s", res.Size(), time.Since(start).Round(time.Millisecond))
		svc, err = dkclique.NewService(g, *k, res.Cliques, opts)
		if err != nil {
			fatal(err)
		}
		if *dataDir != "" {
			log.Printf("durable store initialised in %s (fsync=%s)", *dataDir, *fsyncMode)
		}
	}
	if svc != nil {
		front, ready = svc, svc.Err
	}
	closeBackend := func() error {
		switch {
		case follower != nil:
			return follower.Close()
		case mgr != nil:
			defHandle.Release()
			return mgr.Close()
		}
		return svc.Close()
	}

	// With the frame transport up, a primary also serves replication
	// streams under its fencing epoch. In -root mode the stream covers
	// the default tenant only — its pinned handle guarantees the shipped
	// service outlives the attachment. (A follower never serves streams:
	// cascading replication is not supported, and its frame server
	// carries no replication handler.)
	var prim *dkclique.ReplPrimary
	if *tcpAddr != "" && (svc != nil || mgr != nil) {
		var p *dkclique.ReplPrimary
		var err error
		if mgr != nil {
			p, err = repl.NewPrimary(ctx, defHandle.Service(), *epoch, repl.PrimaryOptions{})
		} else {
			p, err = svc.AttachPrimary(ctx, *epoch, dkclique.ReplPrimaryOptions{})
		}
		if err != nil {
			closeBackend()
			fatal(err)
		}
		prim = p
		log.Printf("replication primary attached (epoch %d)", *epoch)
	}

	// One snapshot-body cache shared across transports: the HTTP handler
	// and the TCP frame server answer a given version from the same
	// pre-encoded bytes. (In -root mode the caches live inside the
	// manager, one per tenant, and both transports resolve them per
	// request — the sharing still holds, tenant by tenant.)
	cache := new(respcache.Snapshot)

	apiOpts := httpapi.Options{MaxOps: *maxOps, MaxBody: *maxBody, Ready: ready}
	var apiHandler http.Handler
	if mgr != nil {
		apiHandler = httpapi.NewMulti(mgr, apiOpts)
	} else {
		apiOpts.Cache = cache
		apiHandler = httpapi.New(front, apiOpts)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: apiHandler,
		// Bounded timeouts so a slow or hostile peer (slowloris drip-feeds,
		// abandoned connections) cannot pin handler goroutines forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errc := make(chan error, 2)
	go func() {
		log.Printf("serving on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	var fsrv *framesrv.Server
	if *tcpAddr != "" {
		fopt := framesrv.Options{MaxOps: *maxOps}
		if mgr != nil {
			fopt.Tenants = tenantResolver{mgr}
		} else {
			fopt.Cache = cache
		}
		if prim != nil {
			fopt.Repl = prim
		}
		fsrv = framesrv.New(front, fopt)
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			closeBackend()
			fatal(err)
		}
		go func() {
			log.Printf("serving frames on %s", *tcpAddr)
			errc <- fsrv.Serve(ln)
		}()
	}

	select {
	case err := <-errc:
		closeBackend()
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behaviour: a second signal kills
		log.Printf("signal received; draining connections (limit %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Drain both listeners concurrently within the one deadline.
		done := make(chan struct{})
		go func() {
			defer close(done)
			if fsrv == nil {
				return
			}
			if err := fsrv.Shutdown(sctx); err != nil {
				log.Printf("frame listener shutdown: %v", err)
			}
		}()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("listener shutdown: %v", err)
		}
		<-done
		if prim != nil {
			prim.Close()
		}
		// Close drains the update queue into the engine and, with -data,
		// writes the final checkpoint — nothing accepted is lost. (On a
		// follower the stream already stopped with the signal context;
		// its applied state is durable up to the last canon boundary.)
		if err := closeBackend(); err != nil {
			fatal(fmt.Errorf("service close: %w", err))
		}
		log.Printf("shutdown complete")
	}
}

// server is the serving surface both transports need; *dkclique.Service
// (primary) and a follower's Front both satisfy it.
type server interface {
	Snapshot() *dkclique.ResultSnapshot
	Stats() dkclique.ServiceStats
	K() int
	Published() <-chan struct{}
	Enqueue(ctx context.Context, ops ...dkclique.Update) error
	Flush(ctx context.Context) error
}

func loadGraph(path, ds, gen string) (*dkclique.Graph, error) {
	switch {
	case ds != "":
		return dkclique.LoadDataset(ds)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dkclique.Read(f)
	case gen != "":
		nodes, edges, seed, err := parseGen(gen)
		if err != nil {
			return nil, err
		}
		return dkclique.Generate(dkclique.CommunitySocial(nodes, 10, 0.2, edges, seed))
	}
	return nil, fmt.Errorf("need -input FILE, -dataset NAME or -gen NODES,EDGES,SEED")
}

func parseGen(spec string) (nodes, edges int, seed int64, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) == 3 {
		var e1, e2, e3 error
		nodes, e1 = strconv.Atoi(parts[0])
		edges, e2 = strconv.Atoi(parts[1])
		seed, e3 = strconv.ParseInt(parts[2], 10, 64)
		if e1 == nil && e2 == nil && e3 == nil {
			return nodes, edges, seed, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("-gen wants NODES,EDGES,SEED, got %q", spec)
}

// loadTenantGraph mirrors loadGraph over the internal graph type the
// manager consumes. No graph flags at all means (nil, nil): the caller
// seeds an empty default tenant instead of failing, because a manager
// host is useful with runtime-created tenants alone.
func loadTenantGraph(path, ds, genSpec string) (*graph.Graph, error) {
	switch {
	case ds != "":
		return dataset.Load(ds)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	case genSpec != "":
		nodes, edges, seed, err := parseGen(genSpec)
		if err != nil {
			return nil, err
		}
		return gen.CommunitySocial(nodes, 10, 0.2, edges, seed), nil
	}
	return nil, nil
}

// seedDefaultTenant makes sure the manager's default tenant exists: on
// a fresh root it is created from the graph flags (solved with the
// selected algorithm) or left empty when none were given; on a resumed
// root the persisted store wins and the graph flags are ignored, same
// as single-tenant -data resumption.
func seedDefaultTenant(m *manager.Manager, path, ds, genSpec, algName string, k, workers int) error {
	for _, info := range m.List() {
		if info.Name == manager.DefaultTenant {
			if path != "" || ds != "" || genSpec != "" {
				log.Printf("tenant %s: resuming persisted store; graph flags ignored", info.Name)
			}
			return nil
		}
	}
	g, err := loadTenantGraph(path, ds, genSpec)
	if err != nil {
		return err
	}
	if g == nil {
		return m.Create(manager.DefaultTenant, manager.TenantConfig{K: k})
	}
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := core.Find(g, core.Options{K: k, Algorithm: alg, Workers: workers})
	if err != nil {
		return err
	}
	log.Printf("tenant %s: n=%d m=%d |S|=%d solved in %s",
		manager.DefaultTenant, g.N(), g.M(), res.Size(), time.Since(start).Round(time.Millisecond))
	return m.CreateFromGraph(manager.DefaultTenant, g, k, res.Cliques)
}

// bootstrapTenants creates the -tenants entries that do not exist yet;
// entries whose stores already live under the root resume untouched, so
// the flag is idempotent across restarts.
func bootstrapTenants(m *manager.Manager, spec string) error {
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) > 5 || parts[0] == "" {
			return fmt.Errorf("-tenants entry %q: want NAME[:K[:NODES[:EDGES[:SEED]]]]", entry)
		}
		name := parts[0]
		var cfg manager.TenantConfig
		dst := []*int{&cfg.K, &cfg.Nodes, &cfg.Edges}
		for i, p := range parts[1:] {
			n, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return fmt.Errorf("-tenants entry %q: bad number %q", entry, p)
			}
			if i < len(dst) {
				*dst[i] = int(n)
			} else {
				cfg.Seed = n
			}
		}
		switch err := m.Create(name, cfg); {
		case errors.Is(err, manager.ErrTenantExists):
			log.Printf("tenant %s: resuming persisted store", name)
		case err != nil:
			return err
		default:
			log.Printf("tenant %s: created (k=%d nodes=%d edges=%d)", name, max(cfg.K, 3), max(cfg.Nodes, 256), cfg.Edges)
		}
	}
	return nil
}

// tenantResolver adapts the store manager to the frame server's tenant
// hook, carrying the manager's status mapping onto the error frames.
type tenantResolver struct{ mgr *manager.Manager }

func (r tenantResolver) AcquireTenant(name string) (framesrv.TenantHandle, error) {
	h, err := r.mgr.Acquire(name)
	if err != nil {
		return nil, &framesrv.StatusError{Code: manager.HTTPStatus(err), Err: err}
	}
	return h, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dkserver:", err)
	os.Exit(1)
}
