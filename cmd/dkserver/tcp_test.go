package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	dkclique "repro"
	"repro/internal/framesrv"
	"repro/internal/httpapi"
	"repro/internal/respcache"
)

// TestTCPTransportWiring drives the exact dual-transport wiring main()
// assembles — public dkclique.Service, one shared respcache.Snapshot,
// HTTP handler and frame server mounted on it — and pins the
// cross-transport contract: both answer a snapshot version with the
// same pre-encoded bytes, the subscribe stream works through the public
// request encoders, and shutdown drains cleanly.
func TestTCPTransportWiring(t *testing.T) {
	g, err := dkclique.Generate(dkclique.CommunitySocial(400, 8, 0.3, 800, 21))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dkclique.Find(g, dkclique.Options{K: 3, Algorithm: dkclique.LP})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := dkclique.NewService(g, 3, res.Cliques, dkclique.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })

	cache := new(respcache.Snapshot)
	hsrv := httptest.NewServer(httpapi.New(svc, httpapi.Options{Cache: cache}))
	t.Cleanup(hsrv.Close)
	fsrv := framesrv.New(svc, framesrv.Options{Cache: cache, DrainGrace: 100 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- fsrv.Serve(ln) }()

	// HTTP binary snapshot body.
	req, err := http.NewRequest(http.MethodGet, hsrv.URL+"/snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", dkclique.WireContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	httpBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The TCP transport must answer the same version with the identical
	// bytes (shared cache — not merely an equivalent encoding).
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(dkclique.EncodeWireSnapshotRequest(nil, true)); err != nil {
		t.Fatal(err)
	}
	tcpBody := make([]byte, len(httpBody))
	if _, err := io.ReadFull(conn, tcpBody); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpBody, tcpBody) {
		t.Fatalf("TCP snapshot body differs from the HTTP one (%d bytes each)", len(httpBody))
	}
	f, _, err := dkclique.DecodeWireFrame(tcpBody)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != dkclique.WireFrameSnapshot || f.Version != svc.Snapshot().Version() {
		t.Fatalf("frame type %d version %d", f.Type, f.Version)
	}

	// Subscribe through the public encoders: the first delta carries the
	// whole snapshot from the empty base.
	sub, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := sub.Write(dkclique.EncodeWireSubscribeRequest(nil)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	chunk := make([]byte, 4096)
	for {
		n, err := sub.Read(chunk)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, chunk[:n]...)
		d, _, derr := dkclique.DecodeWireFrame(buf)
		if errors.Is(derr, dkclique.ErrWireShort) {
			continue
		}
		if derr != nil {
			t.Fatal(derr)
		}
		if d.Type != dkclique.WireFrameDelta || d.FromVersion != 0 {
			t.Fatalf("first streamed frame: type %d from %d", d.Type, d.FromVersion)
		}
		if len(d.AddedIDs) != svc.Size() {
			t.Fatalf("base delta adds %d cliques, snapshot has %d", len(d.AddedIDs), svc.Size())
		}
		break
	}

	// Graceful shutdown: the subscriber is hung up on, Serve returns
	// ErrServerClosed, the listener stops accepting.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fsrv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != framesrv.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	if _, err := sub.Read(chunk); err == nil {
		t.Fatal("subscribe stream still alive after Shutdown")
	}
}
