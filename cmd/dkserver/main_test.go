package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	dkclique "repro"
	"repro/internal/httpapi"
)

// testOptions mirrors the flag defaults, scaled down enough for the
// limit tests to trip them without multi-megabyte request bodies.
var testOptions = httpapi.Options{MaxOps: 64, MaxBody: 1 << 16}

func testHandler(t *testing.T) (http.Handler, *dkclique.Graph) {
	t.Helper()
	g, err := dkclique.Generate(dkclique.CommunitySocial(400, 8, 0.3, 800, 21))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dkclique.Find(g, dkclique.Options{K: 3, Algorithm: dkclique.LP})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := dkclique.NewService(g, 3, res.Cliques, dkclique.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return httpapi.New(svc, testOptions), g
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode
}

func postUpdate(t *testing.T, srv *httptest.Server, body string) (httpapi.UpdateResponse, int) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/update", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out httpapi.UpdateResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

// TestEndpoints drives the JSON API end to end through the public
// dkclique.Service — the exact wiring the dkserver binary runs.
func TestEndpoints(t *testing.T) {
	h, g := testHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var snap httpapi.SnapshotResponse
	if code := getJSON(t, srv, "/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	if snap.K != 3 || snap.Nodes != g.N() || snap.Edges != g.M() || snap.Size == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Cliques) != snap.Size {
		t.Fatalf("cliques %d != size %d", len(snap.Cliques), snap.Size)
	}
	if err := dkclique.Verify(g, snap.K, snap.Cliques); err != nil {
		t.Fatalf("served set invalid: %v", err)
	}

	var lean httpapi.SnapshotResponse
	getJSON(t, srv, "/snapshot?cliques=0", &lean)
	if lean.Cliques != nil {
		t.Fatal("?cliques=0 must omit members")
	}

	covered := snap.Cliques[0][0]
	var cq httpapi.CliqueResponse
	if code := getJSON(t, srv, fmt.Sprintf("/clique/%d", covered), &cq); code != http.StatusOK {
		t.Fatalf("/clique status %d", code)
	}
	if !cq.Covered || len(cq.Clique) != 3 {
		t.Fatalf("clique response = %+v", cq)
	}
	var bad map[string]string
	if code := getJSON(t, srv, "/clique/xyz", &bad); code != http.StatusBadRequest {
		t.Fatalf("bad node id status %d", code)
	}
	// Out-of-range ids are client errors, not "covered": false.
	if code := getJSON(t, srv, fmt.Sprintf("/clique/%d", g.N()), &bad); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node status %d", code)
	}
	if code := getJSON(t, srv, "/clique/-1", &bad); code != http.StatusBadRequest {
		t.Fatalf("negative node status %d", code)
	}

	// Batched lookup: one clique's members resolve to one shared entry.
	c0 := snap.Cliques[0]
	var batch httpapi.CliquesResponse
	path := fmt.Sprintf("/cliques?nodes=%d,%d,%d", c0[0], c0[1], c0[2])
	if code := getJSON(t, srv, path, &batch); code != http.StatusOK {
		t.Fatalf("/cliques status %d", code)
	}
	if len(batch.Cliques) != 1 || len(batch.Results) != 3 {
		t.Fatalf("batched response = %+v", batch)
	}

	// Delete one edge of the covered clique (flushed) and watch the
	// snapshot move.
	c := cq.Clique
	out, code := postUpdate(t, srv,
		fmt.Sprintf(`{"ops":[{"insert":false,"u":%d,"v":%d}],"flush":true}`, c[0], c[1]))
	if code != http.StatusAccepted || !out.Flushed {
		t.Fatalf("/update status %d, %+v", code, out)
	}
	if out.Version <= snap.Version {
		t.Fatalf("version did not advance: %d -> %d", snap.Version, out.Version)
	}

	var stats httpapi.StatsResponse
	if code := getJSON(t, srv, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if stats.Applied != 1 || stats.Deletions != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// Invalid updates are rejected before they can reach the engine.
	if _, code := postUpdate(t, srv, `{"ops":[{"insert":true,"u":-1,"v":2}]}`); code != http.StatusBadRequest {
		t.Fatalf("negative id status %d", code)
	}
	if _, code := postUpdate(t, srv, fmt.Sprintf(`{"ops":[{"insert":true,"u":0,"v":%d}]}`, g.N())); code != http.StatusBadRequest {
		t.Fatalf("out-of-range id status %d", code)
	}
	if _, code := postUpdate(t, srv, `{"ops":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty ops status %d", code)
	}
	if _, code := postUpdate(t, srv, `{not json`); code != http.StatusBadRequest {
		t.Fatalf("bad json status %d", code)
	}
}

// TestUpdateLimits checks the hostile-payload guards: fractional ids,
// oversized op lists, and oversized bodies are all 400s, not engine food.
func TestUpdateLimits(t *testing.T) {
	h, _ := testHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	if _, code := postUpdate(t, srv, `{"ops":[{"insert":true,"u":1.5,"v":2}]}`); code != http.StatusBadRequest {
		t.Fatalf("fractional id status %d", code)
	}
	if _, code := postUpdate(t, srv, `{"ops":[{"insert":true,"u":1e12,"v":2}]}`); code != http.StatusBadRequest {
		t.Fatalf("overflowing id status %d", code)
	}

	var many bytes.Buffer
	many.WriteString(`{"ops":[`)
	for i := 0; i <= testOptions.MaxOps; i++ {
		if i > 0 {
			many.WriteByte(',')
		}
		fmt.Fprintf(&many, `{"insert":true,"u":%d,"v":%d}`, i%50, (i+1)%50)
	}
	many.WriteString(`]}`)
	if _, code := postUpdate(t, srv, many.String()); code != http.StatusBadRequest {
		t.Fatalf("too-many-ops status %d", code)
	}

	huge := `{"ops":[{"insert":true,"u":1,"v":2}],"pad":"` +
		strings.Repeat("x", int(testOptions.MaxBody)) + `"}`
	if _, code := postUpdate(t, srv, huge); code != http.StatusBadRequest {
		t.Fatalf("oversized body status %d", code)
	}
}

// TestDurableShutdownRecover is the end-to-end acceptance path: a durable
// service takes flushed traffic over HTTP, shuts down gracefully, and a
// restarted server serves the byte-identical recovered state.
func TestDurableShutdownRecover(t *testing.T) {
	dir := t.TempDir()
	g, err := dkclique.Generate(dkclique.CommunitySocial(300, 8, 0.3, 700, 77))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dkclique.Find(g, dkclique.Options{K: 3, Algorithm: dkclique.LP})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := dkclique.NewService(g, 3, res.Cliques, dkclique.ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.New(svc, testOptions))

	var before httpapi.SnapshotResponse
	getJSON(t, srv, "/snapshot", &before)
	c := before.Cliques[0]
	// A flushed delete plus an unflushed insert: the graceful path must
	// keep both (Close drains the queue before the final checkpoint).
	if _, code := postUpdate(t, srv,
		fmt.Sprintf(`{"ops":[{"insert":false,"u":%d,"v":%d}],"flush":true}`, c[0], c[1])); code != http.StatusAccepted {
		t.Fatalf("update status %d", code)
	}
	if _, code := postUpdate(t, srv,
		fmt.Sprintf(`{"ops":[{"insert":true,"u":%d,"v":%d}]}`, c[0], c[1])); code != http.StatusAccepted {
		t.Fatalf("update status %d", code)
	}
	// Graceful shutdown: stop the listener, then Close (drain + final
	// checkpoint) — the same sequence main runs on SIGTERM.
	srv.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	want := svc.Snapshot()

	re, err := dkclique.OpenService(dir, dkclique.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	srv2 := httptest.NewServer(httpapi.New(re, testOptions))
	defer srv2.Close()

	var after httpapi.SnapshotResponse
	if code := getJSON(t, srv2, "/snapshot", &after); code != http.StatusOK {
		t.Fatalf("recovered /snapshot status %d", code)
	}
	if after.Version != want.Version() || after.Size != want.Size() ||
		after.Nodes != want.N() || after.Edges != want.M() {
		t.Fatalf("recovered header %+v != pre-shutdown (v=%d size=%d n=%d m=%d)",
			after, want.Version(), want.Size(), want.N(), want.M())
	}
	if len(after.Cliques) != len(want.Cliques()) {
		t.Fatalf("recovered %d cliques, want %d", len(after.Cliques), len(want.Cliques()))
	}
	for i, cl := range want.Cliques() {
		for j, u := range cl {
			if after.Cliques[i][j] != u {
				t.Fatalf("clique %d differs: %v vs %v", i, after.Cliques[i], cl)
			}
		}
	}
	// The delete was re-inserted before shutdown, so the recovered graph
	// equals the original and the served set must be valid on it.
	if err := dkclique.Verify(g, 3, after.Cliques); err != nil {
		t.Fatalf("recovered set invalid: %v", err)
	}
	// The recovered server stays writable.
	if _, code := postUpdate(t, srv2,
		fmt.Sprintf(`{"ops":[{"insert":false,"u":%d,"v":%d}],"flush":true}`, c[0], c[1])); code != http.StatusAccepted {
		t.Fatalf("post-recovery update status %d", code)
	}
}

// TestSnapshotUnderUpdateTraffic is the acceptance scenario: /snapshot
// keeps serving consistent results while concurrent /update traffic is
// applied.
func TestSnapshotUnderUpdateTraffic(t *testing.T) {
	h, g := testHandler(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	edges := make([][2]int32, 0, g.M())
	g.Edges(func(u, v int32) bool {
		edges = append(edges, [2]int32{u, v})
		return true
	})

	var wg sync.WaitGroup
	const writers, readers, rounds = 3, 4, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				e := edges[rng.Intn(len(edges))]
				body := fmt.Sprintf(`{"ops":[{"insert":%v,"u":%d,"v":%d}]}`,
					rng.Intn(2) == 0, e[0], e[1])
				resp, err := http.Post(srv.URL+"/update", "application/json", bytes.NewBufferString(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("update status %d", resp.StatusCode)
					return
				}
			}
		}(int64(w + 1))
	}
	readErrs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(srv.URL + "/snapshot")
				if err != nil {
					readErrs <- err
					return
				}
				var snap httpapi.SnapshotResponse
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err != nil {
					readErrs <- err
					return
				}
				if snap.Version < last {
					readErrs <- fmt.Errorf("version went backwards: %d -> %d", last, snap.Version)
					return
				}
				last = snap.Version
				if len(snap.Cliques) != snap.Size {
					readErrs <- fmt.Errorf("cliques %d != size %d", len(snap.Cliques), snap.Size)
					return
				}
				seen := map[int32]bool{}
				for _, c := range snap.Cliques {
					if len(c) != snap.K {
						readErrs <- fmt.Errorf("clique %v has wrong size", c)
						return
					}
					for _, u := range c {
						if seen[u] {
							readErrs <- fmt.Errorf("node %d in two cliques", u)
							return
						}
						seen[u] = true
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-readErrs:
		t.Fatal(err)
	default:
	}
}
