// Command experiments regenerates the paper's evaluation tables and
// figures on the built-in dataset stand-ins.
//
// Usage:
//
//	experiments -table 2           # Table II on the quick configuration
//	experiments -fig 7 -full       # Figure 7 on the full sweep
//	experiments -all               # everything, quick configuration
//	experiments -ablation ordering # one of the DESIGN.md ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		table    = flag.Int("table", 0, "paper table number to regenerate (1-8)")
		fig      = flag.Int("fig", 0, "paper figure number to regenerate (6 or 7)")
		ablation = flag.String("ablation", "", "ablation to run: pruning, ordering, parallel, leafcount, swap")
		all      = flag.Bool("all", false, "run every table, figure and ablation")
		full     = flag.Bool("full", false, "full sweep (all datasets, k=3..6) instead of the quick subset")
		shapes   = flag.Bool("shapes", false, "verify the paper's qualitative claims (exits non-zero on failure)")
		updates  = flag.Bool("updates", false, "update-path throughput: mixed workload, single-op vs batched")
		workers  = flag.Int("workers", 0, "worker-pool size for every parallel phase (0 = GOMAXPROCS, 1 = serial)")
		unified  = flag.String("unified", "on", "on|off: stamped-intersection fast path of the unified enumeration core (ablation row for -updates)")
	)
	flag.Parse()

	cfg := experiments.Quick(os.Stdout)
	if *full {
		cfg = experiments.Full(os.Stdout)
	}
	cfg.Workers = *workers
	switch *unified {
	case "on":
	case "off":
		cfg.DisableUnified = true
	default:
		fatal(fmt.Errorf("-unified must be on or off, got %q", *unified))
	}

	type job struct {
		name string
		run  func(experiments.Config) error
	}
	tables := map[int]job{
		1: {"Table I", experiments.Table1},
		2: {"Table II", experiments.Table2},
		3: {"Table III", experiments.Table3},
		4: {"Table IV", experiments.Table4},
		5: {"Table V", experiments.Table5},
		6: {"Table VI", experiments.Table6},
		7: {"Table VII", experiments.Table7},
		8: {"Table VIII", experiments.Table8},
	}
	figs := map[int]job{
		6: {"Figure 6", experiments.Fig6},
		7: {"Figure 7", experiments.Fig7},
	}
	ablations := map[string]job{
		"pruning":   {"Ablation pruning", experiments.AblationPruning},
		"ordering":  {"Ablation ordering", experiments.AblationOrdering},
		"parallel":  {"Ablation parallel", experiments.AblationParallel},
		"leafcount": {"Ablation leafcount", experiments.AblationLeafCount},
		"bitset":    {"Ablation bitset", experiments.AblationBitset},
		"swap":      {"Ablation swap", experiments.AblationSwap},
	}

	var jobs []job
	switch {
	case *shapes:
		jobs = append(jobs, job{"Shape checks", experiments.PrintShapes})
	case *updates:
		jobs = append(jobs, job{"Update throughput", experiments.UpdateThroughput})
	case *all:
		for i := 1; i <= 8; i++ {
			jobs = append(jobs, tables[i])
			if i == 1 {
				jobs = append(jobs, figs[6]) // paper order: Fig 6 follows Table I
			}
		}
		jobs = append(jobs, figs[7])
		for _, name := range []string{"pruning", "ordering", "parallel", "leafcount", "bitset", "swap"} {
			jobs = append(jobs, ablations[name])
		}
	case *table != 0:
		j, ok := tables[*table]
		if !ok {
			fatal(fmt.Errorf("no table %d (want 1-8)", *table))
		}
		jobs = append(jobs, j)
	case *fig != 0:
		j, ok := figs[*fig]
		if !ok {
			fatal(fmt.Errorf("no figure %d (want 6 or 7)", *fig))
		}
		jobs = append(jobs, j)
	case *ablation != "":
		j, ok := ablations[*ablation]
		if !ok {
			fatal(fmt.Errorf("no ablation %q", *ablation))
		}
		jobs = append(jobs, j)
	default:
		flag.Usage()
		os.Exit(2)
	}

	for i, j := range jobs {
		if i > 0 {
			fmt.Println()
		}
		if err := j.run(cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", j.name, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
