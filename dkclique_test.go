package dkclique

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	g, err := FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Fatal("Degree wrong")
	}
	if nb := g.Neighbors(4); len(nb) != 2 {
		t.Fatal("Neighbors wrong")
	}
	count := 0
	g.Edges(func(u, v int32) bool { count++; return true })
	if count != 6 {
		t.Fatal("Edges visit count wrong")
	}

	res, err := Find(g, Options{K: 3, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("|S| = %d, want 2", res.Size())
	}
	if err := Verify(g, 3, res.Cliques); err != nil {
		t.Fatal(err)
	}
	if !IsMaximal(g, 3, res.Cliques) {
		t.Fatal("should be maximal")
	}
}

func TestPublicBuilderAndIO(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 3 {
		t.Fatalf("round trip M = %d", g2.M())
	}
	if _, err := Read(strings.NewReader("bogus line\n")); err == nil {
		t.Fatal("expected parse error")
	}
	// Binary round trip through the public API.
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != g.M() || !g3.HasEdge(0, 2) {
		t.Fatal("binary round trip failed")
	}
	if _, err := ReadBinary(strings.NewReader("garbage")); err == nil {
		t.Fatal("expected binary parse error")
	}
}

func TestPublicGenerators(t *testing.T) {
	for name, spec := range map[string]GenSpec{
		"ws":      WattsStrogatz(200, 6, 0.1, 1),
		"er":      ErdosRenyi(100, 300, 2),
		"ba":      BarabasiAlbert(150, 3, 3),
		"caveman": RelaxedCaveman(20, 5, 0.1, 4),
		"planted": Planted(5, 4, 10, 5),
		"sbm":     StochasticBlock(5, 10, 0.7, 0.05, 7),
		"social":  CommunitySocial(300, 6, 0.3, 300, 6),
	} {
		g, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
}

func TestPublicDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 10 {
		t.Fatalf("DatasetNames = %v", names)
	}
	g, err := LoadDataset("FTB")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("FTB empty")
	}
	if _, err := LoadDataset("NOPE"); err == nil {
		t.Fatal("expected unknown dataset error")
	}
}

func TestPublicAlgorithmsAgree(t *testing.T) {
	g, err := Generate(Planted(6, 3, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{HG, GC, L, LP, OPT} {
		res, err := Find(g, Options{K: 3, Algorithm: alg, Budget: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Size() != 6 {
			t.Fatalf("%v: size %d, want 6", alg, res.Size())
		}
	}
	if _, err := ParseAlgorithm("LP"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAlgorithm("xx"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPublicDynamic(t *testing.T) {
	g, err := Generate(CommunitySocial(600, 6, 0.3, 600, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Find(g, Options{K: 3, Algorithm: LP})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamic(g, 3, res.Cliques)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Size() != res.Size() || dyn.K() != 3 {
		t.Fatal("seeding mismatch")
	}
	if dyn.Stats().IndexBuild <= 0 {
		t.Error("index build time not recorded")
	}
	before := dyn.Size()
	ops := 0
	g.Edges(func(u, v int32) bool {
		dyn.DeleteEdge(u, v)
		ops++
		return ops < 50
	})
	if dyn.Size() > before {
		t.Error("deletions cannot grow S")
	}
	snap := dyn.Snapshot()
	if snap.M() != g.M()-50 {
		t.Fatalf("snapshot M = %d, want %d", snap.M(), g.M()-50)
	}
	if err := Verify(snap, 3, dyn.Result()); err != nil {
		t.Fatal(err)
	}
	// Free / candidate accessors behave.
	freeSeen := false
	for u := 0; u < snap.N(); u++ {
		if dyn.IsFree(int32(u)) {
			freeSeen = true
			break
		}
	}
	_ = freeSeen // some graphs may cover every node; accessor just must not panic
	_ = dyn.NumCandidates()
}

func TestPublicApplyBatch(t *testing.T) {
	g, err := Generate(CommunitySocial(600, 6, 0.3, 600, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Find(g, Options{K: 3, Algorithm: LP, StrictTies: true})
	if err != nil {
		t.Fatal(err)
	}
	// Build a mixed batch: delete 40 existing edges, then re-insert half.
	var ops []Update
	g.Edges(func(u, v int32) bool {
		ops = append(ops, Update{Insert: false, U: u, V: v})
		return len(ops) < 40
	})
	for _, op := range ops[:20] {
		ops = append(ops, Update{Insert: true, U: op.U, V: op.V})
	}

	// Worker-count invariance end-to-end through the public API.
	var want [][]int32
	for _, workers := range []int{1, 4} {
		dyn, err := NewDynamicWorkers(g, 3, res.Cliques, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := dyn.ApplyBatch(ops); got != len(ops) {
			t.Fatalf("workers=%d: applied %d of %d ops", workers, got, len(ops))
		}
		if err := Verify(dyn.Snapshot(), 3, dyn.Result()); err != nil {
			t.Fatal(err)
		}
		if !IsMaximal(dyn.Snapshot(), 3, dyn.Result()) {
			t.Fatalf("workers=%d: batched result not maximal", workers)
		}
		if st := dyn.Stats(); st.Batches != 1 || st.BatchedOps != len(ops) {
			t.Fatalf("workers=%d: stats %+v", workers, st)
		}
		if want == nil {
			want = dyn.Result()
			continue
		}
		got := dyn.Result()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: |S| = %d, want %d", workers, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: result diverges at clique %d", workers, i)
				}
			}
		}
	}
}

func TestDynamicValidation(t *testing.T) {
	g, _ := FromEdges(4, [][2]int32{{0, 1}})
	if _, err := NewDynamic(g, 2, nil); err == nil {
		t.Fatal("k=2 accepted")
	}
	if _, err := NewDynamic(g, 3, [][]int32{{0, 1, 2}}); err == nil {
		t.Fatal("non-clique initial set accepted")
	}
}
