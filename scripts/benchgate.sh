#!/usr/bin/env bash
# benchgate.sh BASE.txt PR.txt [MAX_REGRESSION_PCT] [BENCH_NAME]
#
# Minimal benchstat-style regression gate: extracts the ns/op samples of
# one benchmark from two `go test -bench` outputs, compares their medians,
# and fails when the PR median regresses past the threshold. Medians over
# several -count repetitions keep a single noisy sample (CI neighbours,
# GC pause) from failing or passing the gate on its own.
#
# The gate fails loudly — never vacuously: a missing/empty input file, a
# bench run that ended in FAIL, or an input with zero samples of the
# target benchmark all exit non-zero with a diagnostic, so a broken bench
# binary can't slide a regression through as "no data, no problem".
set -euo pipefail

die() { echo "benchgate: $*" >&2; exit 2; }

[ $# -ge 2 ] || die "usage: benchgate.sh BASE.txt PR.txt [MAX_REGRESSION_PCT] [BENCH_NAME]"

base_file=$1
pr_file=$2
max_pct=${3:-15}
bench=${4:-BenchmarkDynamicUpdate}

for f in "$base_file" "$pr_file"; do
    [ -e "$f" ] || die "bench output $f does not exist — did the bench binary build/run at all?"
    [ -s "$f" ] || die "bench output $f is empty — the bench run produced nothing"
    if grep -q '^FAIL' "$f"; then
        die "bench output $f contains a FAIL line — the bench run errored; refusing to compare"
    fi
done

median() {
    # Prints the median ns/op of the named benchmark in a bench output.
    awk -v bench="$bench" '
        $1 ~ "^"bench"(-[0-9]+)?$" && $4 == "ns/op" { v[n++] = $3 }
        END {
            if (n == 0) { print "NA"; exit }
            # insertion sort: counts are tiny
            for (i = 1; i < n; i++) {
                x = v[i]
                for (j = i - 1; j >= 0 && v[j] > x; j--) v[j+1] = v[j]
                v[j+1] = x
            }
            if (n % 2) print v[(n-1)/2]
            else printf "%.2f\n", (v[n/2-1] + v[n/2]) / 2
        }' "$1"
}

base_ns=$(median "$base_file")
pr_ns=$(median "$pr_file")

[ "$base_ns" != "NA" ] || die "no $bench ns/op samples in $base_file — wrong -bench filter or a stale/failed base binary"
[ "$pr_ns" != "NA" ] || die "no $bench ns/op samples in $pr_file — wrong -bench filter or the PR bench run failed"

echo "benchgate: $bench median ns/op: base=$base_ns pr=$pr_ns (limit +$max_pct%)"
awk -v b="$base_ns" -v p="$pr_ns" -v m="$max_pct" 'BEGIN {
    delta = (p - b) / b * 100
    printf "benchgate: delta %+.1f%%\n", delta
    exit (delta > m) ? 1 : 0
}' || { echo "benchgate: FAIL — $bench regressed more than $max_pct%" >&2; exit 1; }
echo "benchgate: OK"
