#!/usr/bin/env bash
# benchgate.sh BASE.txt PR.txt [MAX_REGRESSION_PCT] [BENCH_NAME]
# benchgate.sh --speedup PR.txt MIN_RATIO FAST_BENCH SLOW_BENCH [UNIT]
# benchgate.sh --overhead PR.txt MAX_PCT BASE_BENCH LOADED_BENCH [UNIT]
#
# Minimal benchstat-style regression gate: extracts the ns/op samples of
# one benchmark from two `go test -bench` outputs, compares their medians,
# and fails when the PR median regresses past the threshold. Medians over
# several -count repetitions keep a single noisy sample (CI neighbours,
# GC pause) from failing or passing the gate on its own.
#
# --speedup gates a ratio within ONE bench output instead: the median of
# SLOW_BENCH divided by the median of FAST_BENCH must be at least
# MIN_RATIO. This is how a new optimisation is gated when the base
# commit's bench binary predates the benchmark (base-vs-PR comparison is
# impossible: no base samples exist) — e.g. the wire read path gates
# cached /snapshot against the uncached JSON encode from the same run.
# UNIT picks which benchmark metric to compare (default ns/op); custom
# b.ReportMetric units work too — the write-path gate compares the
# stall-ns/ckpt metric of the pipelined vs serial checkpoint rows.
#
# --overhead is --speedup's inverse: the median of LOADED_BENCH may
# exceed the median of BASE_BENCH by at most MAX_PCT percent. It gates a
# feature that is supposed to cost (almost) nothing on an existing path —
# e.g. multi-tenant routing on cached snapshot reads, where the routed
# row adds tenant resolution to an otherwise identical request.
#
# The gate fails loudly — never vacuously: a missing/empty input file, a
# bench run that ended in FAIL, or an input with zero samples of the
# target benchmark all exit non-zero with a diagnostic, so a broken bench
# binary can't slide a regression through as "no data, no problem".
set -euo pipefail

die() { echo "benchgate: $*" >&2; exit 2; }

check_file() {
    [ -e "$1" ] || die "bench output $1 does not exist — did the bench binary build/run at all?"
    [ -s "$1" ] || die "bench output $1 is empty — the bench run produced nothing"
    if grep -q '^FAIL' "$1"; then
        die "bench output $1 contains a FAIL line — the bench run errored; refusing to compare"
    fi
}

median() {
    # median FILE BENCH [UNIT]: prints BENCH's median UNIT (default
    # ns/op) in FILE. A bench line is "Name iters  v1 unit1  v2 unit2 …"
    # so the value/unit pairs are scanned from field 3.
    awk -v bench="$2" -v unit="${3:-ns/op}" '
        $1 ~ "^"bench"(-[0-9]+)?$" {
            for (i = 3; i < NF; i += 2) if ($(i+1) == unit) { v[n++] = $i; break }
        }
        END {
            if (n == 0) { print "NA"; exit }
            # insertion sort: counts are tiny
            for (i = 1; i < n; i++) {
                x = v[i]
                for (j = i - 1; j >= 0 && v[j] > x; j--) v[j+1] = v[j]
                v[j+1] = x
            }
            if (n % 2) print v[(n-1)/2]
            else printf "%.2f\n", (v[n/2-1] + v[n/2]) / 2
        }' "$1"
}

if [ "${1:-}" = "--speedup" ]; then
    shift
    [ $# -ge 4 ] || die "usage: benchgate.sh --speedup PR.txt MIN_RATIO FAST_BENCH SLOW_BENCH [UNIT]"
    file=$1 min_ratio=$2 fast=$3 slow=$4 unit=${5:-ns/op}
    check_file "$file"
    fast_ns=$(median "$file" "$fast" "$unit")
    slow_ns=$(median "$file" "$slow" "$unit")
    [ "$fast_ns" != "NA" ] || die "no $fast $unit samples in $file — wrong -bench filter or the bench run failed"
    [ "$slow_ns" != "NA" ] || die "no $slow $unit samples in $file — wrong -bench filter or the bench run failed"
    echo "benchgate: median $unit: $slow=$slow_ns $fast=$fast_ns (want >= ${min_ratio}x)"
    awk -v s="$slow_ns" -v f="$fast_ns" -v m="$min_ratio" 'BEGIN {
        ratio = s / f
        printf "benchgate: speedup %.1fx\n", ratio
        exit (ratio < m) ? 1 : 0
    }' || { echo "benchgate: FAIL — $fast is less than ${min_ratio}x faster than $slow" >&2; exit 1; }
    echo "benchgate: OK"
    exit 0
fi

if [ "${1:-}" = "--overhead" ]; then
    shift
    [ $# -ge 4 ] || die "usage: benchgate.sh --overhead PR.txt MAX_PCT BASE_BENCH LOADED_BENCH [UNIT]"
    file=$1 max_pct=$2 base=$3 loaded=$4 unit=${5:-ns/op}
    check_file "$file"
    base_ns=$(median "$file" "$base" "$unit")
    loaded_ns=$(median "$file" "$loaded" "$unit")
    [ "$base_ns" != "NA" ] || die "no $base $unit samples in $file — wrong -bench filter or the bench run failed"
    [ "$loaded_ns" != "NA" ] || die "no $loaded $unit samples in $file — wrong -bench filter or the bench run failed"
    echo "benchgate: median $unit: $base=$base_ns $loaded=$loaded_ns (limit +$max_pct%)"
    awk -v b="$base_ns" -v l="$loaded_ns" -v m="$max_pct" 'BEGIN {
        delta = (l - b) / b * 100
        printf "benchgate: overhead %+.1f%%\n", delta
        exit (delta > m) ? 1 : 0
    }' || { echo "benchgate: FAIL — $loaded costs more than $max_pct% over $base" >&2; exit 1; }
    echo "benchgate: OK"
    exit 0
fi

[ $# -ge 2 ] || die "usage: benchgate.sh BASE.txt PR.txt [MAX_REGRESSION_PCT] [BENCH_NAME]"

base_file=$1
pr_file=$2
max_pct=${3:-15}
bench=${4:-BenchmarkDynamicUpdate}

for f in "$base_file" "$pr_file"; do
    check_file "$f"
done

base_ns=$(median "$base_file" "$bench")
pr_ns=$(median "$pr_file" "$bench")

[ "$base_ns" != "NA" ] || die "no $bench ns/op samples in $base_file — wrong -bench filter or a stale/failed base binary"
[ "$pr_ns" != "NA" ] || die "no $bench ns/op samples in $pr_file — wrong -bench filter or the PR bench run failed"

echo "benchgate: $bench median ns/op: base=$base_ns pr=$pr_ns (limit +$max_pct%)"
awk -v b="$base_ns" -v p="$pr_ns" -v m="$max_pct" 'BEGIN {
    delta = (p - b) / b * 100
    printf "benchgate: delta %+.1f%%\n", delta
    exit (delta > m) ? 1 : 0
}' || { echo "benchgate: FAIL — $bench regressed more than $max_pct%" >&2; exit 1; }
echo "benchgate: OK"
