package dkclique

import (
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/workload"
)

// FuzzReadEdgeList hardens the parser: arbitrary text must either parse
// into a consistent graph or fail cleanly, never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% more\n3 4 0.5\n")
	f.Add("1000000 2000000\n")
	f.Add("a b\n")
	f.Add("")
	f.Add("0 0\n0 1\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Parsed graphs must be internally consistent.
		if g.N() < 0 || g.M() < 0 {
			t.Fatal("negative sizes")
		}
		g.Edges(func(u, v int32) bool {
			if u == v {
				t.Fatal("self-loop survived parsing")
			}
			if !g.HasEdge(v, u) {
				t.Fatal("asymmetric edge")
			}
			return true
		})
	})
}

// FuzzDynamicEngine drives the maintenance engine with arbitrary update
// bytes and checks full invariants at the end of every input.
func FuzzDynamicEngine(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 11, 12, 10, 11, 12})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 10
		g, err := FromEdges(n, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := NewDynamic(g, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			u := int32(ops[i] % n)
			v := int32(ops[i+1] % n)
			if u == v {
				continue
			}
			if ops[i]&1 == 0 {
				dyn.InsertEdge(u, v)
			} else {
				dyn.DeleteEdge(u, v)
			}
		}
		// The maintained set must verify against the final topology.
		if err := Verify(dyn.Snapshot(), 3, dyn.Result()); err != nil {
			t.Fatal(err)
		}
		if !IsMaximal(dyn.Snapshot(), 3, dyn.Result()) {
			t.Fatal("maintained set not maximal")
		}
	})
}

// FuzzEngineBatchVerify drives the maintenance engine's batched update
// path with an arbitrary mixed insert/delete op stream, split into
// arbitrary batch sizes, and checks the full internal invariants
// (Engine.Verify: S disjoint and maximal, candidate index exactly
// Algorithm 5's) after every ApplyBatch — so the unified enumeration core
// behind forEachCliqueWithEdge / forEachCliqueAmong is fuzz-covered end
// to end, including the differential candidate rebuilds and the deferred
// swap processing.
func FuzzEngineBatchVerify(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5}, uint8(2))
	f.Add([]byte{10, 11, 12, 10, 11, 12, 7, 8}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(5))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, batchSize uint8) {
		const n = 12
		g, err := graph.FromEdges(n, [][2]int32{
			{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}, {6, 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := dynamic.New(g, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("fresh engine: %v", err)
		}
		size := int(batchSize%16) + 1
		var ops []workload.Op
		flush := func() {
			if len(ops) == 0 {
				return
			}
			eng.ApplyBatch(ops)
			ops = ops[:0]
			if err := eng.Verify(); err != nil {
				t.Fatalf("after batch: %v", err)
			}
		}
		for i := 0; i+1 < len(raw); i += 2 {
			u := int32(raw[i] % n)
			v := int32(raw[i+1] % n)
			if u == v {
				continue
			}
			ops = append(ops, workload.Op{Insert: raw[i]&1 == 0, U: u, V: v})
			if len(ops) >= size {
				flush()
			}
		}
		flush()
		// The published snapshot must agree with the engine's final state.
		snap := eng.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatal(err)
		}
		if snap.Size() != eng.Size() {
			t.Fatalf("snapshot size %d != engine size %d", snap.Size(), eng.Size())
		}
	})
}

// FuzzFindOnRandomEdges feeds arbitrary edge bytes into the static solver.
func FuzzFindOnRandomEdges(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 2})
	f.Add([]byte{5, 6, 6, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 12
		b := NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%n), int32(raw[i+1]%n))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{HG, LP} {
			res, err := Find(g, Options{K: 3, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, 3, res.Cliques); err != nil {
				t.Fatal(err)
			}
			if !IsMaximal(g, 3, res.Cliques) {
				t.Fatalf("%v: not maximal", alg)
			}
		}
	})
}
