package dkclique_test

import (
	"context"
	"fmt"

	dkclique "repro"
)

// The paper's Fig. 2 example: 9 nodes whose seven triangles admit three
// pairwise-disjoint ones.
func ExampleFind() {
	g, _ := dkclique.FromEdges(9, [][2]int32{
		{0, 2}, {0, 5}, {2, 5},
		{2, 4}, {4, 5},
		{4, 7}, {5, 7},
		{4, 6}, {6, 7},
		{6, 8}, {7, 8},
		{3, 6}, {3, 8},
		{1, 3}, {1, 8},
	})
	res, _ := dkclique.Find(g, dkclique.Options{K: 3, Algorithm: dkclique.LP})
	fmt.Println(res.Size(), "disjoint triangles")
	// Output: 3 disjoint triangles
}

func ExampleNewDynamic() {
	// Two triangles; delete an edge of one and watch S shrink, restore it
	// and watch the engine recover — all in microseconds per update.
	g, _ := dkclique.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	})
	dyn, _ := dkclique.NewDynamic(g, 3, nil)
	fmt.Println("initial:", dyn.Size())
	dyn.DeleteEdge(0, 1)
	fmt.Println("after delete:", dyn.Size())
	dyn.InsertEdge(0, 1)
	fmt.Println("after re-insert:", dyn.Size())
	// Output:
	// initial: 2
	// after delete: 1
	// after re-insert: 2
}

func ExampleDynamic_ApplyBatch() {
	// Drain a queue of accumulated updates in one call: the engine
	// coalesces the index maintenance the updates share and rebuilds the
	// affected cliques concurrently, instead of once per update.
	g, _ := dkclique.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	})
	dyn, _ := dkclique.NewDynamic(g, 3, nil)
	applied := dyn.ApplyBatch([]dkclique.Update{
		{Insert: false, U: 0, V: 1}, // break the first triangle
		{Insert: false, U: 3, V: 4}, // break the second
		{Insert: true, U: 0, V: 1},  // restore the first
	})
	fmt.Println(applied, "updates applied,", dyn.Size(), "triangle remains")
	// Output: 3 updates applied, 1 triangle remains
}

func ExampleService() {
	// Serve a continuously updated clique set: readers get immutable
	// point-in-time snapshots (wait-free, zero allocations) while a single
	// writer goroutine drains the queued updates in coalesced batches.
	g, _ := dkclique.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	})
	svc, _ := dkclique.NewService(g, 3, nil, dkclique.ServiceOptions{})
	defer svc.Close()

	ctx := context.Background()
	before := svc.Snapshot() // point-in-time: later updates never touch it
	svc.Enqueue(ctx, dkclique.Update{Insert: false, U: 0, V: 1})
	svc.Flush(ctx) // wait until the writer has applied the queue

	after := svc.Snapshot()
	fmt.Println("before:", before.Size(), "cliques, version", before.Version())
	fmt.Println("after: ", after.Size(), "cliques, version", after.Version())
	fmt.Println("node 4 still in", after.CliqueOf(4))
	// Output:
	// before: 2 cliques, version 1
	// after:  1 cliques, version 2
	// node 4 still in [3 4 5]
}

func ExampleMaximumMatching() {
	// k = 2 special case: a 6-cycle has a perfect matching.
	g, _ := dkclique.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
	})
	m := dkclique.MaximumMatching(g)
	fmt.Println(m.Size(), "matched pairs")
	// Output: 3 matched pairs
}

func ExamplePartitionGraph() {
	// Six disjoint triangles partition perfectly into six teams.
	g, _ := dkclique.Generate(dkclique.Planted(6, 3, 0, 1))
	p, _ := dkclique.PartitionGraph(g, dkclique.Options{K: 3, Algorithm: dkclique.LP})
	fmt.Println(p.FullCliques(), "full-clique teams,", len(p.Unassigned()), "left over")
	// Output: 6 full-clique teams, 0 left over
}
