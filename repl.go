package dkclique

import (
	"context"

	"repro/internal/repl"
	"repro/internal/serve"
)

// ReplPrimaryOptions tunes AttachPrimary; the zero value picks
// defaults (a 64Ki-op history window before checkpoint-and-trim).
type ReplPrimaryOptions = repl.PrimaryOptions

// ReplPrimary is the log-shipping side of replication: attached to a
// Service it records every applied batch and canonicalization boundary,
// and serves catch-up streams (checkpoint install + WAL suffix) to
// followers over the frame transport. It implements the frame server's
// ReplHandler, so wiring replication into a serving process is
// AttachPrimary + framesrv.Options{Repl: p}. Detach with Close.
type ReplPrimary = repl.Primary

// ReplFollowerOptions configures NewReplFollower: the primary's
// frame-transport address, an optional durable directory (stream resume
// across restarts), reconnect backoff bounds and the readiness lag
// bound.
type ReplFollowerOptions = repl.FollowerOptions

// ReplFollower consumes a primary's replication stream into a local
// follower-mode service whose snapshots are byte-identical to the
// primary's at every applied version. Run drives the stream
// (reconnecting with backoff); Front serves reads across reinstalls;
// local writes are refused with ErrNotPrimary.
type ReplFollower = repl.Follower

// ReplFollowerStatus is a point-in-time view of a follower's
// replication state: epoch, applied vs stream version, install and
// refusal counters.
type ReplFollowerStatus = repl.FollowerStatus

// ErrNotPrimary is returned by Enqueue on a follower-mode service:
// followers apply the replicated stream only, never local writes.
var ErrNotPrimary = serve.ErrNotPrimary

// AttachPrimary attaches a replication primary to the service under the
// operator-assigned fencing epoch (monotone across primary handoffs —
// a follower that has seen epoch N refuses every frame from epochs
// below it). The attach happens at a writer barrier, so the shipped
// history is complete from the current version onward.
func (s *Service) AttachPrimary(ctx context.Context, epoch uint64, opt ReplPrimaryOptions) (*ReplPrimary, error) {
	return repl.NewPrimary(ctx, s.s, epoch, opt)
}

// NewReplFollower builds a replication follower. With an Options.Dir
// that already holds a previous follower's store, the engine state and
// fencing epoch resume from it; otherwise the first connection installs
// a checkpoint. Call Run to start streaming.
func NewReplFollower(opt ReplFollowerOptions) (*ReplFollower, error) {
	return repl.NewFollower(opt)
}
